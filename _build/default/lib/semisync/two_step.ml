module Pset = Rrfd.Pset

type msg = { round : int; value : int }

type state = {
  me : Rrfd.Proc.t;
  n : int;
  input : int;
  round : int;
  half : int; (* 0 = about to take the round's first step, 1 = its second *)
  received : (int * (Rrfd.Proc.t * int)) list; (* (round, (sender, value)) *)
  completed : Pset.t list; (* D(me, r), newest first *)
  decision : int option;
  max_rounds : int;
}

type report = {
  result : Machine.result;
  d_sets : Rrfd.Pset.t list array;
}

let senders_for_round s r =
  List.filter_map
    (fun (round, (sender, _)) -> if round = r then Some sender else None)
    s.received
  |> Pset.of_list

let value_from s r sender =
  List.find_map
    (fun (round, (q, v)) -> if round = r && q = sender then Some v else None)
    s.received

let finish_round s =
  let heard = senders_for_round s s.round in
  let d = Pset.diff (Pset.full s.n) heard in
  let completed = d :: s.completed in
  let decision =
    if s.round >= s.max_rounds && Option.is_none s.decision then
      (* Theorem 3.1 with k = 1 on round 1: the lowest-id unsuspected
         process; its message was necessarily received. *)
      let round1_d = List.nth completed (List.length completed - 1) in
      match Pset.min_elt (Pset.diff (Pset.full s.n) round1_d) with
      | Some winner -> value_from s 1 winner
      | None -> None
    else s.decision
  in
  { s with completed; decision; round = s.round + 1; half = 0 }

let program ~inputs ~max_rounds ~log =
  {
    Machine.name = "two-step-rrfd";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Two_step: inputs length mismatch";
        {
          me = p;
          n;
          input = inputs.(p);
          round = 1;
          half = 0;
          received = [];
          completed = [];
          decision = None;
          max_rounds;
        });
    step =
      (fun s ~inbox ->
        let received =
          List.fold_left
            (fun acc (sender, (m : msg)) -> (m.round, (sender, m.value)) :: acc)
            s.received inbox
        in
        let s = { s with received } in
        if s.half = 0 then begin
          let heard_current = not (Pset.is_empty (senders_for_round s s.round)) in
          let s = { s with half = 1 } in
          if heard_current || s.round > s.max_rounds then (s, None)
          else (s, Some { round = s.round; value = s.input })
        end
        else begin
          let s = finish_round s in
          log s.me (List.rev s.completed);
          (s, None)
        end);
    decide = (fun s -> s.decision);
  }

let run ~n ~inputs ?(rounds = 1) ~schedule ?(crashes = []) () =
  let d_sets = Array.make n [] in
  let log p completed = d_sets.(p) <- completed in
  let program = program ~inputs ~max_rounds:rounds ~log in
  let result =
    Machine.run ~n ~schedule ~max_steps_per_process:(4 * (rounds + 1)) ~crashes
      program
  in
  { result; d_sets }

let check_identical report =
  let n = Array.length report.d_sets in
  let rec round_ok r =
    let views =
      Array.to_list report.d_sets
      |> List.filter_map (fun l -> List.nth_opt l (r - 1))
    in
    match views with
    | [] -> None
    | first :: rest ->
      if List.for_all (Pset.equal first) rest then round_ok (r + 1)
      else
        Some
          (Printf.sprintf "round %d: processes computed different fault sets" r)
  in
  if n = 0 then None else round_ok 1
