lib/semisync/two_step.mli: Machine Rrfd
