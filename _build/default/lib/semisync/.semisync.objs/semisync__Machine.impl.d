lib/semisync/machine.ml: Array Dsim List Option Rrfd
