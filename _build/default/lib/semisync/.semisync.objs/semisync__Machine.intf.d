lib/semisync/machine.mli: Dsim Rrfd
