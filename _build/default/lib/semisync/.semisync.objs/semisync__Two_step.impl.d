lib/semisync/two_step.ml: Array List Machine Option Printf Rrfd
