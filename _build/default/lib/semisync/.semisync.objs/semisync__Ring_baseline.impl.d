lib/semisync/ring_baseline.ml: Array List Machine Option Rrfd
