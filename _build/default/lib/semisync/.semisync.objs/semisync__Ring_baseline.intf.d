lib/semisync/ring_baseline.mli: Machine
