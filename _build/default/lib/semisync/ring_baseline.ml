type msg = { hop : int; value : int }

type state = {
  me : Rrfd.Proc.t;
  n : int;
  input : int;
  steps : int; (* own steps taken *)
  best_hop : int; (* highest hop seen; -1 initially *)
  carried : int option; (* the relayed value *)
  sent : bool;
  decision : int option;
}

let program ~inputs =
  {
    Machine.name = "ring-baseline";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Ring_baseline: inputs length mismatch";
        {
          me = p;
          n;
          input = inputs.(p);
          steps = 0;
          best_hop = -1;
          carried = None;
          sent = false;
          decision = None;
        });
    step =
      (fun s ~inbox ->
        let s = { s with steps = s.steps + 1 } in
        let s =
          List.fold_left
            (fun s (_sender, m) ->
              if m.hop > s.best_hop then
                { s with best_hop = m.hop; carried = Some m.value }
              else s)
            s inbox
        in
        let decision =
          if s.best_hop >= s.n - 1 then s.carried else s.decision
        in
        let s = { s with decision } in
        (* Phase structure: p_j relays no earlier than its (j+1)-th own
           step, so every relay costs the relayer Θ(j) of its own steps —
           the shape of the 2n-step DDS algorithm. *)
        let should_send =
          (not s.sent)
          && s.steps > s.me
          && ((s.me = 0 && s.best_hop < 0)
             || (s.me > 0 && s.best_hop >= s.me - 1))
        in
        if should_send then
          let value = if s.me = 0 then s.input else Option.get s.carried in
          ({ s with sent = true }, Some { hop = s.me; value })
        else (s, None));
    decide = (fun s -> s.decision);
  }

let run ~n ~inputs ~schedule =
  Machine.run ~n ~schedule ~max_steps_per_process:(4 * n) (program ~inputs)
