(** Theorem 5.1: the semi-synchronous model implements the equation-(5)
    RRFD in two steps per round — hence two-step consensus.

    A process's execution proceeds in blocks of two steps per simulated
    round.  First step of round [r]: if a round-[r] message was already
    received, stay silent for the round (act as having omitted the
    broadcast); otherwise broadcast the round-[r] message.  Second step:
    keep receiving.  At the end of the block, [D(i,r)] is the set of
    processes whose round-[r] message was not received.  The first
    receive/send works as an atomic read-modify-write, so every process
    computes the {e same} [D(·,r)] (equation 5) — under which the one-round
    algorithm of Theorem 3.1 with [k = 1] decides: consensus in 2 steps,
    answering the open problem of Dolev–Dwork–Stockmeyer. *)

type report = {
  result : Machine.result;
  d_sets : Rrfd.Pset.t list array;
      (** Per process, the fault sets of its completed rounds (round 1
          first).  Crashed processes may have completed fewer rounds. *)
}

val run :
  n:int ->
  inputs:int array ->
  ?rounds:int ->
  schedule:Machine.schedule ->
  ?crashes:(Rrfd.Proc.t * int) list ->
  unit ->
  report
(** [run ~n ~inputs ~schedule ()] executes the protocol.  Every process
    decides at the end of round [rounds] (default 1) on the Theorem-3.1
    value from round 1 — the value of the lowest-identifier process outside
    [D(i,1)] — so each decision takes exactly [2 * rounds] steps. *)

val check_identical : report -> string option
(** Verifies equation (5) on the run: for every round, all processes that
    completed it computed the same fault set.  [None] when it holds. *)
