(** The Dolev–Dwork–Stockmeyer semi-synchronous model of Section 5.

    Properties (paper, Sec. 5): processes are fully asynchronous (no bound
    on relative speeds); they fail by crashing; a step atomically receives
    every message buffered since the process's last step and then broadcasts
    at most one message; broadcast is reliable; and communication is fast
    relative to steps — every message sent is delivered before any process
    takes its next step.

    Operationally: an adversarial scheduler picks which process takes the
    next atomic step; a broadcast instantly enters every process's buffer.
    Any fair interleaving is a legal run, so quantifying over schedules
    quantifies over speed assignments. *)

(** Scheduler strategies.  All are fair to non-crashed processes. *)
type schedule =
  | Round_robin
  | Random of Dsim.Rng.t
  | Fixed_then_round_robin of int list
      (** Pin an exact prefix of the interleaving, then round-robin. *)

type ('s, 'm) program = {
  name : string;
  init : n:int -> Rrfd.Proc.t -> 's;
  step : 's -> inbox:(Rrfd.Proc.t * 'm) list -> 's * 'm option;
      (** One atomic step: consume the buffered messages (oldest first),
          optionally broadcast.  Must be a pure state transition. *)
  decide : 's -> int option;
}

type result = {
  decisions : int option array;
  steps_to_decide : int option array;
      (** Process's own step count at its first decision — the paper's
          complexity measure (2 for the Sec. 5 algorithm, Θ(n) for the
          baseline). *)
  total_steps : int;
  crashed : Rrfd.Pset.t;
}

val run :
  n:int ->
  schedule:schedule ->
  ?max_steps_per_process:int ->
  ?crashes:(Rrfd.Proc.t * int) list ->
  ('s, 'm) program ->
  result
(** [run ~n ~schedule program] interleaves atomic steps until every live
    process has decided or has taken [max_steps_per_process] (default 64)
    steps.  [crashes] lists [(p, s)]: process [p] stops before taking its
    [s]-th step (1-based, so [s = 1] means it never steps). *)
