module Pset = Rrfd.Pset

type crash_spec = { round : int; survivors : Pset.t }

type t = {
  n : int;
  crashes : crash_spec option array;
  omitters : Pset.t;
  drops : round:int -> sender:Rrfd.Proc.t -> Pset.t; (* cached, deterministic *)
}

let n t = t.n

let no_drops ~round:_ ~sender:_ = Pset.empty

let none ~n =
  if n < 1 || n > Pset.max_universe then invalid_arg "Faults.none: bad n";
  { n; crashes = Array.make n None; omitters = Pset.empty; drops = no_drops }

let faulty_processes t =
  let crashed = ref Pset.empty in
  Array.iteri
    (fun i c -> if Option.is_some c then crashed := Pset.add i !crashed)
    t.crashes;
  Pset.union !crashed t.omitters

let crashed_before t ~round =
  let set = ref Pset.empty in
  Array.iteri
    (fun i c ->
      match c with
      | Some { round = r; _ } when r < round -> set := Pset.add i !set
      | Some _ | None -> ())
    t.crashes;
  !set

let delivered t ~round ~sender ~receiver =
  match t.crashes.(sender) with
  | Some { round = r; _ } when r < round -> false
  | Some { round = r; survivors } when r = round ->
    Pset.mem receiver survivors || Rrfd.Proc.equal sender receiver
  | Some _ | None ->
    Rrfd.Proc.equal sender receiver
    || not (Pset.mem receiver (t.drops ~round ~sender))

let crash ~n specs =
  let base = none ~n in
  let crashes = Array.make n None in
  List.iter
    (fun (p, round, survivors) ->
      if p < 0 || p >= n then invalid_arg "Faults.crash: process out of range";
      if round < 1 then invalid_arg "Faults.crash: round must be ≥ 1";
      if not (Pset.subset survivors (Pset.full n)) then
        invalid_arg "Faults.crash: survivors out of range";
      if Option.is_some crashes.(p) then
        invalid_arg "Faults.crash: duplicate crash spec";
      crashes.(p) <- Some { round; survivors })
    specs;
  { base with crashes }

let random_crash rng ~n ~f ~max_round =
  if f < 0 || f >= n then invalid_arg "Faults.random_crash: need 0 ≤ f < n";
  if max_round < 1 then invalid_arg "Faults.random_crash: max_round ≥ 1";
  let count = Dsim.Rng.int_in_range rng ~min:0 ~max:f in
  let victims = Dsim.Rng.sample_without_replacement rng count n in
  let specs =
    List.map
      (fun p ->
        let round = Dsim.Rng.int_in_range rng ~min:1 ~max:max_round in
        let survivors = Pset.random_subset rng (Pset.full n) in
        (p, round, survivors))
      victims
  in
  crash ~n specs

let omission ~n ~faulty ~drops =
  let base = none ~n in
  if not (Pset.subset faulty (Pset.full n)) then
    invalid_arg "Faults.omission: faulty set out of range";
  let cache : (int * int, Pset.t) Hashtbl.t = Hashtbl.create 64 in
  let cached ~round ~sender =
    if not (Pset.mem sender faulty) then Pset.empty
    else
      match Hashtbl.find_opt cache (round, sender) with
      | Some s -> s
      | None ->
        let s = Pset.remove sender (drops ~round ~sender) in
        Hashtbl.replace cache (round, sender) s;
        s
  in
  { base with omitters = faulty; drops = cached }

let random_omission rng ~n ~f =
  if f < 0 || f >= n then invalid_arg "Faults.random_omission: need 0 ≤ f < n";
  let count = Dsim.Rng.int_in_range rng ~min:0 ~max:f in
  let faulty = Pset.of_list (Dsim.Rng.sample_without_replacement rng count n) in
  let drops ~round:_ ~sender:_ = Pset.random_subset rng (Pset.full n) in
  omission ~n ~faulty ~drops
