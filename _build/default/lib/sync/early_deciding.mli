(** Early-deciding consensus for the synchronous crash model.

    FloodSet always pays [f + 1] rounds, the worst case of Corollary 4.2
    with [k = 1]; but when only [f' < f] crashes actually occur, deciding
    early is possible: a process decides at the end of the first round in
    which it hears from exactly the same set of processes as in the
    previous round (a {e locally clean} round — nobody it was relying on
    disappeared), which happens by round [min(f' + 2, f + 1)].

    Agreement is {e non-uniform}: a process that decides and then crashes
    may have decided differently (its early decision can rest on values the
    survivors never learn) — correct processes always agree, because
    anything a correct process learns after a decider's stable round must
    have passed through a process the decider heard.

    This is the classic ablation on the lower bound: the bound constrains
    the worst case, not the common case, and the E9 chain adversary is
    exactly the schedule that forces the worst case.  Used by the
    early-stopping experiment/bench. *)

type state

val algorithm : inputs:int array -> f:int -> (state, int list, int) Rrfd.Algorithm.t
(** Flooding with the clean-round rule; still decides by [f + 1] at the
    latest.  Messages are sorted known-value lists, as in {!Flood}. *)

val rounds_heard : state -> Rrfd.Pset.t list
(** Heard-sets of completed rounds (most recent first), for tests. *)
