(** Flooding agreement — the classic synchronous baselines.

    Every round each process broadcasts the set of input values it knows and
    merges what it receives; at a fixed horizon it decides the minimum known
    value.  With at most [f] crash faults:

    - horizon [f + 1] solves consensus (FloodSet, the Fischer–Lynch bound);
    - horizon [⌊f/k⌋ + 1] solves k-set agreement (Chaudhuri et al.), which
      Corollary 4.2/4.4 shows is optimal — the lower-bound experiment runs
      exactly this algorithm at smaller horizons against the chain adversary
      and watches agreement break. *)

type state

val min_flood : inputs:int array -> horizon:int -> (state, int list, int) Rrfd.Algorithm.t
(** [min_flood ~inputs ~horizon] floods known values for [horizon] rounds,
    then decides the minimum.  Messages are sorted lists of known values. *)

val consensus : inputs:int array -> f:int -> (state, int list, int) Rrfd.Algorithm.t
(** [min_flood] at horizon [f + 1]. *)

val kset : inputs:int array -> f:int -> k:int -> (state, int list, int) Rrfd.Algorithm.t
(** [min_flood] at horizon [⌊f/k⌋ + 1].
    @raise Invalid_argument unless [f ≥ k > 0]. *)

val known : state -> int list
(** The values currently known (sorted), exposed for tests. *)
