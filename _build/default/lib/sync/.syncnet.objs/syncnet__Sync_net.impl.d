lib/sync/sync_net.ml: Array Faults Option Rrfd
