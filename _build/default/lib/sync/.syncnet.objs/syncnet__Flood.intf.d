lib/sync/flood.mli: Rrfd
