lib/sync/sync_net.mli: Faults Rrfd
