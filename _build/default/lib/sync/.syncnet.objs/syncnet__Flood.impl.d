lib/sync/flood.ml: Array Int List Option Printf Rrfd
