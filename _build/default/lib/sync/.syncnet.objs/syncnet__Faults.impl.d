lib/sync/faults.ml: Array Dsim Hashtbl List Option Rrfd
