lib/sync/faults.mli: Dsim Rrfd
