lib/sync/early_deciding.mli: Rrfd
