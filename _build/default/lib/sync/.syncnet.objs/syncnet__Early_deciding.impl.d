lib/sync/early_deciding.ml: Array Int List Option Printf Rrfd
