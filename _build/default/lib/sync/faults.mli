(** Fault patterns for the synchronous substrate.

    A pattern fixes, before the run, which processes misbehave and how: a
    crashing process stops at a given round, its last round of messages
    reaching only a chosen subset; an omitting process stays alive but some
    of its messages are dropped each round.  Patterns are explicit data, so
    runs replay exactly. *)

type t

val n : t -> int

val none : n:int -> t
(** The failure-free pattern. *)

val faulty_processes : t -> Rrfd.Pset.t
(** Every process that crashes or omits under this pattern. *)

val crashed_before : t -> round:int -> Rrfd.Pset.t
(** Processes that crashed strictly before [round] (they send nothing in
    [round]). *)

val delivered : t -> round:int -> sender:Rrfd.Proc.t -> receiver:Rrfd.Proc.t -> bool
(** Whether [sender]'s round-[round] message reaches [receiver], accounting
    for earlier crashes, partial last-round delivery and omissions.  A
    process always "delivers" to itself unless it crashed earlier. *)

val crash : n:int -> (Rrfd.Proc.t * int * Rrfd.Pset.t) list -> t
(** [crash ~n specs] crashes each listed process: [(p, r, survivors)] means
    [p] crashes at round [r], its round-[r] messages reaching exactly
    [survivors] (its later messages nobody).
    @raise Invalid_argument on duplicate processes, [r < 1], or survivor
    sets mentioning out-of-range processes. *)

val random_crash :
  Dsim.Rng.t -> n:int -> f:int -> max_round:int -> t
(** Up to [f] processes crash at uniform rounds in [\[1, max_round\]] with
    uniform partial-delivery sets. *)

val omission :
  n:int -> faulty:Rrfd.Pset.t -> drops:(round:int -> sender:Rrfd.Proc.t -> Rrfd.Pset.t) -> t
(** Send-omission pattern: every round, [drops ~round ~sender] is the set of
    receivers that miss [sender]'s message; it must be constant across calls
    (it is sampled once per (round, sender) and cached) and empty for
    senders outside [faulty]. *)

val random_omission :
  Dsim.Rng.t -> n:int -> f:int -> t
(** Up to [f] faulty senders, each dropping an independent random subset of
    receivers every round. *)
