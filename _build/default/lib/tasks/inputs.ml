let distinct n = Array.init n Fun.id

let binary rng n = Array.init n (fun _ -> Dsim.Rng.int rng 2)

let random rng ~n ~universe = Array.init n (fun _ -> Dsim.Rng.int rng universe)

let constant n v = Array.make n v
