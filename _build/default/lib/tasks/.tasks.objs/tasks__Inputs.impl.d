lib/tasks/inputs.ml: Array Dsim Fun
