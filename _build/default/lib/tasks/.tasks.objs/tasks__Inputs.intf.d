lib/tasks/inputs.mli: Dsim
