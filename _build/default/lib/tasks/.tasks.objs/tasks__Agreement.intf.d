lib/tasks/agreement.mli: Format Rrfd
