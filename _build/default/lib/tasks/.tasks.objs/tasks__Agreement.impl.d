lib/tasks/agreement.ml: Array Format Fun Int List Printf Rrfd
