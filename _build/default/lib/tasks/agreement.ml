type report = {
  n : int;
  undecided : Rrfd.Proc.t list;
  distinct_values : int list;
  invalid : (Rrfd.Proc.t * int) list;
}

let evaluate ~inputs ~decisions =
  let n = Array.length inputs in
  if Array.length decisions <> n then
    invalid_arg "Agreement.evaluate: length mismatch";
  let undecided = ref [] and values = ref [] and invalid = ref [] in
  for i = n - 1 downto 0 do
    match decisions.(i) with
    | None -> undecided := i :: !undecided
    | Some v ->
      values := v :: !values;
      if not (Array.exists (Int.equal v) inputs) then invalid := (i, v) :: !invalid
  done;
  let distinct_values = List.sort_uniq Int.compare !values in
  { n; undecided = !undecided; distinct_values; invalid = !invalid }

let distinct_decisions ~decisions =
  Array.to_list decisions
  |> List.filter_map Fun.id
  |> List.sort_uniq Int.compare
  |> List.length

let check ?(allow_undecided = Rrfd.Pset.empty) ~k ~inputs decisions =
  let r = evaluate ~inputs ~decisions in
  let blocking =
    List.filter (fun p -> not (Rrfd.Pset.mem p allow_undecided)) r.undecided
  in
  match (blocking, r.invalid) with
  | p :: _, _ -> Some (Printf.sprintf "termination: p%d never decided" p)
  | [], (p, v) :: _ ->
    Some (Printf.sprintf "validity: p%d decided %d, which is nobody's input" p v)
  | [], [] ->
    let distinct = List.length r.distinct_values in
    if distinct > k then
      Some
        (Printf.sprintf "agreement: %d distinct values decided, bound is %d"
           distinct k)
    else None

let pp_report ppf r =
  Format.fprintf ppf "@[<h>decided %d/%d, %d distinct value(s)%s%s@]"
    (r.n - List.length r.undecided)
    r.n
    (List.length r.distinct_values)
    (if r.undecided = [] then "" else ", some undecided")
    (if r.invalid = [] then "" else ", INVALID decisions present")
