(** Checkers for k-set agreement (and consensus, the [k = 1] case).

    The task (Sec. 3): each of [n > k] processes chooses a value that is the
    initial value of one of the processes; at most [k] different values are
    chosen.  The checkers evaluate an execution's decisions against its
    inputs and report every violated clause. *)

type report = {
  n : int;
  undecided : Rrfd.Proc.t list;  (** Processes with no decision. *)
  distinct_values : int list;  (** Sorted distinct decided values. *)
  invalid : (Rrfd.Proc.t * int) list;
      (** Decisions that are not the input of any process. *)
}

val evaluate : inputs:int array -> decisions:int option array -> report
(** [evaluate ~inputs ~decisions] summarises an execution.
    @raise Invalid_argument on length mismatch. *)

val check :
  ?allow_undecided:Rrfd.Pset.t ->
  k:int ->
  inputs:int array ->
  int option array ->
  string option
(** [check ~k ~inputs decisions] is [None] iff the execution solves k-set
    agreement: every process outside [allow_undecided] (default: none)
    decided, every decision is some input (validity), and at most [k]
    distinct values were decided.  Otherwise it describes the earliest
    violated clause. *)

val distinct_decisions : decisions:int option array -> int
(** Number of distinct decided values (undecided processes ignored). *)

val pp_report : Format.formatter -> report -> unit
