(** Input-vector generators for agreement tasks. *)

val distinct : int -> int array
(** [distinct n] is [[|0; 1; …; n−1|]] — every process proposes its own id,
    the hardest case for agreement. *)

val binary : Dsim.Rng.t -> int -> int array
(** Uniform 0/1 inputs. *)

val random : Dsim.Rng.t -> n:int -> universe:int -> int array
(** [random rng ~n ~universe] draws [n] values uniformly from
    [\[0, universe)]. *)

val constant : int -> int -> int array
(** [constant n v] is [n] copies of [v] — exercises convergence clauses. *)
