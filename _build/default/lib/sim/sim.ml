type t = {
  mutable clock : float;
  queue : (t -> unit) Heap.t;
  random : Rng.t;
  mutable executed : int;
}

let create ?(seed = 0) () =
  { clock = 0.0; queue = Heap.create (); random = Rng.create seed; executed = 0 }

let now sim = sim.clock

let rng sim = sim.random

let check_time what time =
  if not (Float.is_finite time) then invalid_arg (what ^ ": time must be finite")

let schedule_at sim ~time f =
  check_time "Sim.schedule_at" time;
  if time < sim.clock then invalid_arg "Sim.schedule_at: time is in the past";
  Heap.push sim.queue time f

let schedule sim ~delay f =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at sim ~time:(sim.clock +. delay) f

let pending sim = Heap.length sim.queue

let step sim =
  match Heap.pop sim.queue with
  | None -> false
  | Some (time, f) ->
    sim.clock <- time;
    sim.executed <- sim.executed + 1;
    f sim;
    true

let run ?until ?max_events sim =
  let start = sim.executed in
  let budget_ok () =
    match max_events with None -> true | Some m -> sim.executed - start < m
  in
  let time_ok () =
    match until with
    | None -> true
    | Some horizon -> (
      match Heap.peek sim.queue with
      | None -> false
      | Some (time, _) -> time <= horizon)
  in
  let rec loop () =
    if budget_ok () && time_ok () && step sim then loop ()
  in
  loop ()

let executed sim = sim.executed
