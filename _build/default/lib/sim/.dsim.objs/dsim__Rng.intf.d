lib/sim/rng.mli:
