lib/sim/sim.ml: Float Heap Rng
