lib/sim/heap.mli:
