lib/sim/sim.mli: Rng
