(** Binary min-heaps with stable tie-breaking.

    Used as the event queue of the discrete-event simulator.  Entries with
    equal priority dequeue in insertion order, which keeps simulations
    deterministic independently of heap internals. *)

type 'a t
(** A mutable min-heap of values prioritised by [float] keys. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of entries in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v] with the given priority. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] removes and returns the minimum-priority entry, breaking priority
    ties by insertion order; [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** [peek h] is the entry [pop] would return, without removing it. *)

val clear : 'a t -> unit
(** [clear h] removes all entries. *)

val to_sorted_list : 'a t -> (float * 'a) list
(** [to_sorted_list h] drains a copy of [h] in pop order. *)
