type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

let entry_lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let dummy = h.data.(0) in
    let data = Array.make (max 8 (2 * capacity)) dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && entry_lt h.data.(l) h.data.(i) then l else i in
  let smallest = if r < h.size && entry_lt h.data.(r) h.data.(smallest) then r else smallest in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h priority value =
  let entry = { priority; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 8 entry;
  grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.priority, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (e.priority, e.value)
  end

let clear h =
  h.size <- 0;
  h.next_seq <- 0

let to_sorted_list h =
  let copy = { data = Array.sub h.data 0 (Array.length h.data); size = h.size; next_seq = h.next_seq } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some kv -> drain (kv :: acc)
  in
  drain []
