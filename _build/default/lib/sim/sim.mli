(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue.  Events are thunks
    scheduled at virtual times; running the simulator pops events in time
    order (insertion order within a time instant) and executes them, which may
    schedule further events.  The substrate libraries ([msgnet], [semisync])
    build their network and timing models on top of this loop. *)

type t
(** A simulator instance. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh simulator whose clock reads [0.0].
    [seed] (default 0) initialises the simulator's random stream. *)

val now : t -> float
(** [now sim] is the current virtual time. *)

val rng : t -> Rng.t
(** [rng sim] is the simulator's deterministic random stream. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule sim ~delay f] arranges for [f sim] to run at time
    [now sim +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** [schedule_at sim ~time f] arranges for [f sim] to run at absolute virtual
    time [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)

val pending : t -> int
(** [pending sim] is the number of events still queued. *)

val step : t -> bool
(** [step sim] executes the next event.  Returns [false] when the queue is
    empty (and the clock does not move). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run ?until ?max_events sim] executes events until the queue drains, the
    clock passes [until], or [max_events] events have run, whichever comes
    first.  Events scheduled exactly at [until] still execute. *)

val executed : t -> int
(** [executed sim] is the total number of events executed so far. *)
