(* E6 — Theorem 3.1: one-round k-set agreement under the k-set detector. *)

let run ?(seed = 6) ?(trials = 500) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  let cases =
    [ (4, 1); (4, 2); (4, 3); (8, 1); (8, 3); (8, 7); (16, 2); (16, 5); (24, 4) ]
  in
  List.iter
    (fun (n, k) ->
      let max_distinct = ref 0 and failures = ref 0 and rounds_bad = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.distinct n in
        let detector = Rrfd.Detector_gen.k_set trial_rng ~n ~k in
        let outcome =
          Rrfd.Engine.run ~n
            ~check:(Rrfd.Predicate.k_set ~k)
            ~algorithm:(Rrfd.Kset.one_round ~inputs) ~detector ()
        in
        if outcome.Rrfd.Engine.rounds_used <> 1 then incr rounds_bad;
        let distinct =
          Tasks.Agreement.distinct_decisions
            ~decisions:outcome.Rrfd.Engine.decisions
        in
        max_distinct := max !max_distinct distinct;
        if
          Tasks.Agreement.check ~k ~inputs outcome.Rrfd.Engine.decisions
          <> None
        then incr failures
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int trials;
          Table.cell_int !max_distinct;
          Table.cell_int !failures;
          Table.cell_int !rounds_bad;
          Table.cell_bool (!failures = 0 && !rounds_bad = 0 && !max_distinct <= k);
        ]
        :: !rows)
    cases;
  {
    Table.id = "E6";
    title = "one-round k-set agreement (Theorem 3.1)";
    claim =
      "Thm 3.1: under |∪D − ∩D| < k per round, emitting the input and \
       deciding the lowest-id unsuspected value solves k-set agreement in \
       exactly one round";
    header =
      [ "n"; "k"; "trials"; "max-distinct"; "task-fails"; "extra-rounds"; "ok" ];
    rows = List.rev !rows;
    notes = [ "max-distinct ≤ k is the agreement bound; 0 task-fails = validity+termination also hold" ];
  }
