(** The experiment registry: every table the harness can regenerate. *)

type entry = {
  id : string;
  title : string;
  run : seed:int -> trials:int option -> Table.t;
}

val all : entry list
(** E1 through E19, in order. *)

val find : string -> entry option
(** Look up by case-insensitive id ("e9" finds E9). *)

val default_seed : int

val run_all : ?seed:int -> unit -> Table.t list
