(** Result tables for the experiment harness.

    Every experiment produces one table; the bench harness and the
    [experiments] CLI render them identically, so EXPERIMENTS.md can quote
    the output verbatim. *)

type t = {
  id : string;  (** "E6" *)
  title : string;
  claim : string;  (** The paper statement being reproduced. *)
  header : string list;
  rows : string list list;
  notes : string list;
}

val cell_int : int -> string

val cell_float : float -> string
(** Two decimal places. *)

val cell_bool : bool -> string
(** "yes" / "NO". *)

val print : t -> unit
(** Render to stdout with aligned columns. *)

val ok : t -> bool
(** True iff no row cell equals ["NO"] — the quick health signal used by
    the harness exit code. *)
