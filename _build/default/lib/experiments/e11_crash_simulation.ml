(* E11 — Theorem 4.3: three asynchronous snapshot rounds per simulated
   synchronous crash round, with the crash predicate holding among live
   simulated processes. *)

let run ?(seed = 11) ?(trials = 200) () =
  let rng = Dsim.Rng.create seed in
  let rows = ref [] in
  List.iter
    (fun (n, k, sync_rounds) ->
      let f = k * sync_rounds in
      let check_bad = ref 0 and witness_bad = ref 0 and total_crashes = ref 0 in
      for _ = 1 to trials do
        let trial_rng = Dsim.Rng.split rng in
        let inputs = Tasks.Inputs.distinct n in
        let sync = Syncnet.Flood.min_flood ~inputs ~horizon:sync_rounds in
        let algorithm = Rrfd.Sim_crash.algorithm ~sync in
        let detector = Rrfd.Detector_gen.iis trial_rng ~n ~f:k in
        let states, _ =
          Rrfd.Engine.states_after ~n
            ~rounds:(Rrfd.Sim_crash.async_rounds ~sync_rounds)
            ~algorithm ~detector ()
        in
        Array.iter
          (fun s ->
            if Rrfd.Sim_crash.missing_witnesses s > 0 then incr witness_bad)
          states;
        (match Rrfd.Sim_crash.check_simulated ~f ~k states with
        | None -> ()
        | Some _ -> incr check_bad);
        total_crashes :=
          !total_crashes
          + Rrfd.Pset.cardinal
              (Rrfd.Fault_history.cumulative_union
                 (Rrfd.Sim_crash.simulated_history states))
      done;
      rows :=
        [
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int sync_rounds;
          Table.cell_int (3 * sync_rounds);
          Table.cell_int trials;
          Table.cell_int !check_bad;
          Table.cell_int !witness_bad;
          Table.cell_float (float_of_int !total_crashes /. float_of_int trials);
          Table.cell_bool (!check_bad = 0 && !witness_bad = 0);
        ]
        :: !rows)
    [ (4, 1, 2); (4, 1, 3); (6, 2, 2); (8, 2, 3); (10, 3, 2) ];
  {
    Table.id = "E11";
    title = "crash-fault simulation: 3 async rounds per sync round (Thm 4.3)";
    claim =
      "Thm 4.3: an async snapshot system with ≤k failures simulates \
       ⌊f/k⌋ rounds of a synchronous system with ≤f crash faults, via n \
       parallel adopt-commits per round; ≤k·r simulated crashes by round r \
       and crash closure hold";
    header =
      [
        "n"; "k"; "sync-rounds"; "async-rounds"; "trials"; "check-viol";
        "witness-gaps"; "avg-crashes"; "ok";
      ];
    rows = List.rev !rows;
    notes =
      [ "overhead is exactly 3 asynchronous rounds per simulated synchronous round" ];
  }
