lib/experiments/e15_abd.ml: Dsim List Msgnet Table
