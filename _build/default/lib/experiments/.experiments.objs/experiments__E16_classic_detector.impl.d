lib/experiments/e16_classic_detector.ml: Array Dsim List Msgnet Option Rrfd Table Tasks
