lib/experiments/e11_crash_simulation.ml: Array Dsim List Rrfd Syncnet Table Tasks
