lib/experiments/e19_bg.ml: Dsim List Rrfd Syncnet Table Tasks
