lib/experiments/e05_detector_s.ml: Dsim List Rrfd Table
