lib/experiments/e02_async_mp.ml: Array Dsim List Msgnet Printf Rrfd Table Tasks
