lib/experiments/e03_shared_memory.ml: Dsim List Rrfd Table
