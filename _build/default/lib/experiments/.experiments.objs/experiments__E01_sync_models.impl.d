lib/experiments/e01_sync_models.ml: Dsim List Rrfd Syncnet Table Tasks
