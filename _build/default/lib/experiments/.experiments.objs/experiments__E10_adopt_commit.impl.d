lib/experiments/e10_adopt_commit.ml: Array Dsim List Option Rrfd Shm Table Tasks
