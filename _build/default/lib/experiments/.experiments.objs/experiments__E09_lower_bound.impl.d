lib/experiments/e09_lower_bound.ml: Adversary Array List Printf Rrfd Syncnet Table Tasks
