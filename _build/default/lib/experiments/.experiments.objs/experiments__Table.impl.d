lib/experiments/table.ml: Array Char List Printf String
