lib/experiments/e08_kset_object.ml: Dsim List Rrfd Shm Table Tasks
