lib/experiments/e17_early_deciding.ml: Adversary Array Dsim List Printf Rrfd Syncnet Table Tasks
