lib/experiments/e07_kset_snapshot.ml: Dsim List Rrfd Table Tasks
