lib/experiments/e14_conjecture.ml: Adversary Dsim List Printf Rrfd Table
