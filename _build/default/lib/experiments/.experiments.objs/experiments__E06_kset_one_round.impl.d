lib/experiments/e06_kset_one_round.ml: Dsim List Rrfd Table Tasks
