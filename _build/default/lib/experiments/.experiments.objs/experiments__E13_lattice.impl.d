lib/experiments/e13_lattice.ml: List Rrfd Table
