lib/experiments/e12_semisync.ml: Array Dsim List Option Semisync Table Tasks
