lib/experiments/e04_snapshot_iis.ml: Dsim List Rrfd Shm Table
