lib/experiments/e18_phased.ml: Array Dsim List Rrfd Table Tasks
