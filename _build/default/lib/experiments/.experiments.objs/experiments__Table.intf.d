lib/experiments/table.mli:
