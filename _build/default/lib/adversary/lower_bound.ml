module Pset = Rrfd.Pset

type t = {
  n : int;
  k : int;
  rounds : int;
  inputs : int array;
  crash_specs : (Rrfd.Proc.t * int * Rrfd.Pset.t) list;
  final_carriers : Rrfd.Proc.t array;
}

let required_processes ~k ~rounds = (k * (rounds + 1)) + 1

let build ~n ~k ~rounds =
  if k < 1 then invalid_arg "Lower_bound.build: k must be ≥ 1";
  if rounds < 0 then invalid_arg "Lower_bound.build: rounds must be ≥ 0";
  if n < required_processes ~k ~rounds then
    invalid_arg "Lower_bound.build: system too small for the chain construction";
  (* Carrier of chain j at round r is process k*r + j; it crashes at round
     r + 1 delivering only to the next carrier. *)
  let crash_specs = ref [] in
  for r = 0 to rounds - 1 do
    for j = 0 to k - 1 do
      let carrier = (k * r) + j in
      let successor = (k * (r + 1)) + j in
      crash_specs := (carrier, r + 1, Pset.singleton successor) :: !crash_specs
    done
  done;
  {
    n;
    k;
    rounds;
    inputs = Array.init n Fun.id;
    crash_specs = List.rev !crash_specs;
    final_carriers = Array.init k (fun j -> (k * rounds) + j);
  }

let omission_faulty t = Pset.of_list (List.init (t.k * t.rounds) Fun.id)

let omission_drops t ~round ~sender =
  (* Carrier p = k·r + j "crashes" at round r + 1 in the crash reading; as
     an omitter it drops everyone but its successor at that round and
     everyone afterwards. *)
  if sender >= t.k * t.rounds then Pset.empty
  else
    let fault_round = (sender / t.k) + 1 in
    let successor = sender + t.k in
    if round < fault_round then Pset.empty
    else if round = fault_round then Pset.remove successor (Pset.full t.n)
    else Pset.full t.n
