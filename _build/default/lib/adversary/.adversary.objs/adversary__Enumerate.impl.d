lib/adversary/enumerate.ml: Array List Rrfd
