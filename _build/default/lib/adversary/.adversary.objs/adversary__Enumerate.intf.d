lib/adversary/enumerate.mli: Rrfd
