lib/adversary/lower_bound.mli: Rrfd
