lib/adversary/lower_bound.ml: Array Fun List Rrfd
