module Pset = Rrfd.Pset

let round_assignments ~n =
  let proper =
    List.filter
      (fun s -> not (Pset.equal s (Pset.full n)))
      (Pset.subsets (Pset.full n))
  in
  let rec build i =
    if i = n then [ [] ]
    else
      let rest = build (i + 1) in
      List.concat_map (fun s -> List.map (fun tail -> s :: tail) rest) proper
  in
  List.map Array.of_list (build 0)

let fold ~n ~rounds ~satisfying ~init ~f =
  let assignments = round_assignments ~n in
  let rec explore acc history depth =
    if not (Rrfd.Predicate.holds satisfying history) then acc
    else if depth = rounds then f acc history
    else
      List.fold_left
        (fun acc d -> explore acc (Rrfd.Fault_history.append history d) (depth + 1))
        acc assignments
  in
  explore init (Rrfd.Fault_history.empty ~n) 0

let count ~n ~rounds ~satisfying =
  fold ~n ~rounds ~satisfying ~init:0 ~f:(fun c _ -> c + 1)

let find ~n ~rounds ~satisfying ~f =
  let exception Found of Rrfd.Fault_history.t in
  try
    fold ~n ~rounds ~satisfying ~init:() ~f:(fun () h ->
        if f h then raise (Found h));
    None
  with Found h -> Some h
