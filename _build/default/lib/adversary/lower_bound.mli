(** The chain adversary behind Corollaries 4.2 and 4.4.

    To force more than [k] distinct decisions from any [⌊f/k⌋]-round
    algorithm, the adversary hides the [k] smallest input values inside [k]
    disjoint {e crash chains}: at every round, the current carrier of each
    hidden value crashes while delivering its last message to exactly one
    fresh carrier.  After [R = ⌊f/k⌋] rounds (spending [k·R ≤ f] crashes)
    each hidden value is known to exactly one live process, so a min-flood
    algorithm truncated at [R] rounds produces [k + 1] distinct decisions;
    with one extra round the carriers are finally heard by everybody and
    agreement returns — the crossover at [⌊f/k⌋ + 1] that the paper's lower
    bound predicts. *)

type t = {
  n : int;
  k : int;
  rounds : int;  (** Rounds of crashing the adversary sustains. *)
  inputs : int array;  (** Input assignment (process ids). *)
  crash_specs : (Rrfd.Proc.t * int * Rrfd.Pset.t) list;
      (** [(p, r, survivors)]: [p] crashes at round [r], its last messages
          reaching exactly [survivors] — feed to the synchronous substrate's
          crash-pattern constructor. *)
  final_carriers : Rrfd.Proc.t array;
      (** The [k] live processes left knowing the hidden values [0..k-1]. *)
}

val required_processes : k:int -> rounds:int -> int
(** Minimum system size the construction needs: [k * (rounds + 1) + 1]. *)

val build : n:int -> k:int -> rounds:int -> t
(** Construct the adversary.
    @raise Invalid_argument if [n < required_processes ~k ~rounds] or
    [k < 1] or [rounds < 0]. *)

val omission_faulty : t -> Rrfd.Pset.t
(** The senders the {e omission} reading of the same adversary declares
    faulty — every carrier, [k·rounds] of them. *)

val omission_drops : t -> round:int -> sender:Rrfd.Proc.t -> Rrfd.Pset.t
(** The same hiding schedule expressed as send-omissions (Corollary 4.2's
    own fault model): at its crash round a carrier's message reaches only
    its successor, and afterwards nobody — but the process stays alive.
    Feed to the synchronous substrate's omission-pattern constructor. *)
