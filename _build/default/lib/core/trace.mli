(** Readable execution transcripts.

    The engine's {!Engine.outcome} carries the fault history and decisions;
    this module runs an algorithm while also recording what every process
    emitted and decided each round, and renders the transcript — the
    debugging view for algorithm authors and the pretty output used by the
    examples. *)

type 'out round = {
  number : int;
  emissions : string array;  (** Rendered message of each process. *)
  fault_sets : Pset.t array;
  new_decisions : (Proc.t * 'out) list;
      (** Processes that first decided at this round. *)
}

type 'out t = {
  n : int;
  rounds : 'out round list;  (** First round first. *)
  outcome : 'out Engine.outcome;
}

val record :
  n:int ->
  ?max_rounds:int ->
  ?check:Predicate.t ->
  ?stop_when_decided:bool ->
  pp_msg:(Format.formatter -> 'm -> unit) ->
  algorithm:('s, 'm, 'out) Algorithm.t ->
  detector:Detector.t ->
  unit ->
  'out t
(** Like {!Engine.run}, additionally rendering each emission with
    [pp_msg].  The transcript is produced by replaying the recorded fault
    history, so the algorithm must be deterministic (every algorithm in
    this repository is). *)

val pp :
  (Format.formatter -> 'out -> unit) -> Format.formatter -> 'out t -> unit
(** Render the whole transcript, one block per round. *)
