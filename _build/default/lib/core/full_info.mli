(** The full-information protocol.

    Several of the paper's implementation arguments (items 3 and 4 of Sec. 2)
    "run the system in full-information mode": every round, a process emits
    everything it knows and merges everything it receives.  A view is then a
    tree whose leaves are initial values and whose internal nodes record who
    heard whom at which round. *)

type t =
  | Initial of Proc.t * int
      (** [Initial (p, v)]: process [p] started with input [v]. *)
  | Node of { owner : Proc.t; round : int; heard : t option array; faulty : Pset.t }
      (** [owner]'s knowledge after completing [round]: [heard.(j)] is
          [p_j]'s round view if received, [None] if [p_j ∈ faulty]. *)

val owner : t -> Proc.t
(** The process whose view this is. *)

val depth : t -> int
(** Number of completed rounds recorded ([Initial] has depth 0). *)

val knows_input_of : t -> Proc.t -> bool
(** [knows_input_of v p] is true iff [p]'s initial value occurs in [v]. *)

val known_inputs : t -> (Proc.t * int) list
(** All initial values occurring in the view, sorted by process, without
    duplicates. *)

val heard_from_last_round : t -> Pset.t
(** The processes whose round view was received in the final round
    (the complement of the final [faulty] set within the system).  For an
    [Initial] view this is the empty set. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact printing: [Initial] as [p0:v], nodes as [p0@r⟨...⟩]. *)

val algorithm : inputs:int array -> (t, t, t) Algorithm.t
(** The full-information algorithm with the given initial values (one per
    process).  The state after round [r] is the depth-[r] view.  [decide]
    always returns the current view, so the engine's per-round decisions
    expose the evolving views; callers typically run it for a fixed number
    of rounds. *)
