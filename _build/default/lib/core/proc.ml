type t = int

let compare = Int.compare

let equal = Int.equal

let pp ppf p = Format.fprintf ppf "p%d" p

let to_string p = "p" ^ string_of_int p

let all n =
  if n < 0 then invalid_arg "Proc.all: negative n";
  List.init n Fun.id
