(** Round-by-round fault detectors as adversaries.

    A detector chooses, for each round, the fault sets [D(i,r)] handed to
    every process.  The paper views the RRFD as an adversary that is part of
    the system: the more histories it can produce, the harder the model.
    Detectors here may consult the fault history so far, so stateless
    detectors are pure functions of the history; detectors with private state
    (e.g. a sampled crash schedule) close over it.

    Constructive generators for each named predicate live in the [adversary]
    library; this module provides the type and the basic constructors the
    core algorithms and engine need. *)

type t
(** A fault-detector adversary for a fixed number of processes. *)

val name : t -> string

val make : name:string -> (Fault_history.t -> Pset.t array) -> t
(** [make ~name next] builds a detector; [next history] must return the
    fault sets for round [Fault_history.rounds history + 1], one per
    process. *)

val next : t -> Fault_history.t -> Pset.t array
(** Produce the next round's fault sets.  The engine validates the result's
    shape; predicate conformance is checked separately. *)

val none : t
(** The failure-free detector: [D(i,r) = ∅] always (perfect synchrony). *)

val of_schedule : ?after:Pset.t array -> Pset.t array list -> t
(** [of_schedule rounds] replays the given per-round fault sets, first round
    first; once the schedule is exhausted it keeps returning [after]
    (default: the last scheduled round, or all-empty if the schedule is
    empty).  Array lengths must match the engine's [n]. *)

val constant : n:int -> Pset.t array -> t
(** [constant ~n d] returns the same fault sets every round. *)

val map : name:string -> (Fault_history.t -> Pset.t array -> Pset.t array) -> t -> t
(** [map ~name f d] post-processes [d]'s output each round. *)

val recording : t -> t * (unit -> Pset.t array list)
(** [recording d] is a detector behaving exactly like [d] that also logs
    every round it produces; the second component returns the rounds so
    far (first round first).  Replaying the log through {!of_schedule}
    lets two algorithms face the {e same} adversary — the fair-comparison
    harness used by the ablation experiments. *)
