(** Immutable sets of process identifiers.

    A set is a single-word bitset, so systems are limited to at most
    {!max_universe} processes — ample for every experiment in the paper.  All
    operations are O(1) or O(cardinality); sets compare structurally. *)

type t
(** An immutable set of process identifiers in [\[0, max_universe)]. *)

val max_universe : int
(** The largest supported number of processes (62). *)

val empty : t

val full : int -> t
(** [full n] is [{0, ..., n-1}].
    @raise Invalid_argument if [n < 0] or [n > max_universe]. *)

val singleton : Proc.t -> t
(** @raise Invalid_argument if the id is out of range. *)

val of_list : Proc.t list -> t

val to_list : t -> Proc.t list
(** Elements in increasing order. *)

val add : Proc.t -> t -> t

val remove : Proc.t -> t -> t

val mem : Proc.t -> t -> bool

val cardinal : t -> int

val is_empty : t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val disjoint : t -> t -> bool

val iter : (Proc.t -> unit) -> t -> unit
(** Ascending order. *)

val fold : (Proc.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val for_all : (Proc.t -> bool) -> t -> bool

val exists : (Proc.t -> bool) -> t -> bool

val filter : (Proc.t -> bool) -> t -> t

val min_elt : t -> Proc.t option
(** The least identifier in the set, if any. *)

val max_elt : t -> Proc.t option

val choose_nth : t -> int -> Proc.t
(** [choose_nth s i] is the [i]-th smallest element.
    @raise Invalid_argument if [i < 0] or [i >= cardinal s]. *)

val random_subset : Dsim.Rng.t -> t -> t
(** [random_subset rng s] keeps each element of [s] independently with
    probability 1/2. *)

val random_subset_of_size : Dsim.Rng.t -> t -> int -> t
(** [random_subset_of_size rng s k] is a uniform k-element subset of [s].
    @raise Invalid_argument if [k < 0] or [k > cardinal s]. *)

val subsets : t -> t list
(** All subsets of [s] (2^|s| of them), in an unspecified but deterministic
    order.  Intended only for small sets in exhaustive enumerations. *)

val subsets_of_size : t -> int -> t list
(** All k-element subsets of [s]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{p0,p2,p5}]. *)

val to_string : t -> string
