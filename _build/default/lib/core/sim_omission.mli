(** Theorem 4.1: asynchronous snapshot systems simulate synchronous
    omission-fault systems.

    An asynchronous atomic-snapshot RRFD system with at most [k] failures
    (predicate of item 5) runs any synchronous algorithm {e unchanged} for
    [⌊f/k⌋] rounds while staying inside the synchronous send-omission
    predicate with at most [f] faults: each asynchronous round misses at most
    [k] processes, and comparability makes the per-round union of misses at
    most [k], so after [⌊f/k⌋] rounds the cumulative union is at most
    [k·⌊f/k⌋ ≤ f].

    The simulation is the identity on algorithms — the theorem is predicate
    arithmetic — so this module provides the round-budget computation and a
    runner that executes a synchronous algorithm in the asynchronous system
    and verifies the omission predicate on the produced history. *)

val budget : f:int -> k:int -> int
(** [budget ~f ~k] is [⌊f/k⌋], the number of synchronous rounds the
    asynchronous system can simulate.
    @raise Invalid_argument unless [f ≥ k > 0]. *)

type 'out result = {
  outcome : 'out Engine.outcome;
      (** The run of the synchronous algorithm in the asynchronous system
          ([budget ~f ~k] rounds, detector checked online against the
          snapshot predicate with [k] failures). *)
  omission_violation : string option;
      (** [None] iff the produced history satisfies the synchronous
          send-omission predicate with at most [f] faults — the theorem's
          conclusion. *)
}

val simulate :
  n:int ->
  f:int ->
  k:int ->
  algorithm:('s, 'm, 'out) Algorithm.t ->
  detector:Detector.t ->
  unit ->
  'out result
(** [simulate ~n ~f ~k ~algorithm ~detector ()] runs [algorithm] for
    [budget ~f ~k] rounds under [detector] (which must satisfy the
    atomic-snapshot predicate with at most [k] failures; this is checked
    online) and reports whether the resulting history lies inside
    [Predicate.omission ~f]. *)
