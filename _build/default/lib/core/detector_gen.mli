(** Constructive detector generators, one per named predicate.

    Each generator returns a detector whose histories satisfy the
    corresponding {!Predicate} {e by construction}; the engine's online check
    independently re-verifies this in every experiment.  All generators draw
    from an explicit {!Dsim.Rng.t}, so runs are reproducible from a seed. *)

val omission : Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.omission ~f]: a fixed faulty-sender set [F] of size
    at most [f] is sampled once; every round every process misses an
    arbitrary subset of [F] (never itself). *)

val crash : ?crash_probability:float -> Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.crash ~f]: processes crash at random rounds (at most
    [f] in total; each not-yet-crashed process crashes with
    [crash_probability] per round, default [0.3]).  A process crashing at
    round [r] is missed by a random (possibly empty) subset of receivers at
    [r] and by everybody afterwards, which is exactly the crash-closure
    predicate. *)

val async : Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.async_resilient ~f]: independent uniform fault sets
    of size at most [f]. *)

val async_mixed : Dsim.Rng.t -> n:int -> f:int -> t:int -> Detector.t
(** Satisfies [Predicate.async_mixed ~f ~t]: each round a witness set [Q] of
    size at most [t] is drawn; members of [Q] miss up to [t] processes,
    everybody else up to [f]. *)

val shared_memory : Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.shared_memory ~f]: per round, one process is chosen
    that nobody suspects; all fault sets avoid it and have size at most
    [f]. *)

val iis : Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.snapshot ~f]: per round an ordered partition
    [B₁, …, B_m] of the processes is drawn with [|B₁| ≥ n − f]; a process in
    block [B_j] sees exactly [B₁ ∪ … ∪ B_j] — the iterated-immediate-snapshot
    structure of item 5. *)

val k_set : Dsim.Rng.t -> n:int -> k:int -> Detector.t
(** Satisfies [Predicate.k_set ~k]: per round a common set [C] and an
    uncertainty set [U] with [|U| < k] are drawn; process [i]'s fault set is
    [C ∪ Uᵢ] for a private [Uᵢ ⊆ U], so the union minus the intersection is
    inside [U]. *)

val antisymmetric : Dsim.Rng.t -> n:int -> f:int -> Detector.t
(** Satisfies [Predicate.async_resilient ~f] ∧
    [Predicate.antisymmetric_misses] — item 4's alternative ingredients,
    {e without} forcing anyone to be seen by all: missing relations may form
    cycles, which is exactly what the known-by-all analysis (E14) stresses. *)

val identical : Dsim.Rng.t -> n:int -> Detector.t
(** Satisfies [Predicate.identical_views] (equation 5): one random proper
    subset per round, handed to every process. *)

val detector_s : Dsim.Rng.t -> n:int -> Detector.t
(** Satisfies [Predicate.detector_s]: one immortal process is sampled and
    never suspected by anyone; all other fault sets are arbitrary. *)
