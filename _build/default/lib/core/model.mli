(** The named RRFD systems of Section 2, packaged.

    A model bundles the predicate defining the system with a canonical
    random-detector generator whose histories satisfy it by construction, so
    experiments can quantify over "runs of the model" uniformly. *)

type t = {
  name : string;
  description : string;  (** Which traditional system this corresponds to. *)
  predicate : Predicate.t;
  generator : Dsim.Rng.t -> Detector.t;
}

val sync_omission : n:int -> f:int -> t
(** Item 1: synchronous message passing, at most [f] send-omission faults. *)

val sync_crash : n:int -> f:int -> t
(** Item 2: synchronous message passing, at most [f] crash faults. *)

val async_message_passing : n:int -> f:int -> t
(** Item 3: asynchronous message passing, at most [f] crash failures. *)

val async_mixed : n:int -> f:int -> t:int -> t
(** Item 3's system B, of which two rounds implement one round of the
    item-3 system. *)

val shared_memory : n:int -> f:int -> t
(** Item 4: asynchronous SWMR shared memory, at most [f] crash faults. *)

val atomic_snapshot : n:int -> f:int -> t
(** Item 5: asynchronous atomic-snapshot shared memory (the iterated
    immediate snapshot structure). *)

val detector_s : n:int -> t
(** Item 6: asynchronous message passing augmented with failure detector S
    (wait-free: up to [n − 1] failures, one immortal never suspected). *)

val k_set_detector : n:int -> k:int -> t
(** Section 3's system, in which k-set agreement takes one round. *)

val identical_views : n:int -> t
(** Equation (5): the system the semi-synchronous model of Sec. 5
    implements in two steps per round. *)

val all : n:int -> f:int -> t list
(** Every model above at its canonical parameters (with [t = f] for the
    mixed model, [k = f + 1] for the k-set detector), used by the
    submodel-lattice experiment. *)
