type t = {
  name : string;
  description : string;
  predicate : Predicate.t;
  generator : Dsim.Rng.t -> Detector.t;
}

let sync_omission ~n ~f =
  {
    name = Printf.sprintf "sync-omission(n=%d,f=%d)" n f;
    description = "synchronous message passing, ≤ f send-omission faults (item 1)";
    predicate = Predicate.omission ~f;
    generator = (fun rng -> Detector_gen.omission rng ~n ~f);
  }

let sync_crash ~n ~f =
  {
    name = Printf.sprintf "sync-crash(n=%d,f=%d)" n f;
    description = "synchronous message passing, ≤ f crash faults (item 2)";
    predicate = Predicate.crash ~f;
    generator = (fun rng -> Detector_gen.crash rng ~n ~f);
  }

let async_message_passing ~n ~f =
  {
    name = Printf.sprintf "async-mp(n=%d,f=%d)" n f;
    description = "asynchronous message passing, ≤ f crash failures (item 3)";
    predicate = Predicate.async_resilient ~f;
    generator = (fun rng -> Detector_gen.async rng ~n ~f);
  }

let async_mixed ~n ~f ~t =
  {
    name = Printf.sprintf "async-mixed(n=%d,f=%d,t=%d)" n f t;
    description = "item 3's system B: t processes may miss up to t, the rest up to f";
    predicate = Predicate.async_mixed ~f ~t;
    generator = (fun rng -> Detector_gen.async_mixed rng ~n ~f ~t);
  }

let shared_memory ~n ~f =
  {
    name = Printf.sprintf "shm(n=%d,f=%d)" n f;
    description = "asynchronous SWMR shared memory, ≤ f crash faults (item 4)";
    predicate = Predicate.shared_memory ~f;
    generator = (fun rng -> Detector_gen.shared_memory rng ~n ~f);
  }

let atomic_snapshot ~n ~f =
  {
    name = Printf.sprintf "snapshot(n=%d,f=%d)" n f;
    description = "asynchronous atomic snapshot / IIS, ≤ f crash faults (item 5)";
    predicate = Predicate.snapshot ~f;
    generator = (fun rng -> Detector_gen.iis rng ~n ~f);
  }

let detector_s ~n =
  {
    name = Printf.sprintf "detector-S(n=%d)" n;
    description = "asynchronous message passing with failure detector S (item 6)";
    predicate = Predicate.detector_s;
    generator = (fun rng -> Detector_gen.detector_s rng ~n);
  }

let k_set_detector ~n ~k =
  {
    name = Printf.sprintf "kset-detector(n=%d,k=%d)" n k;
    description = "Section 3's detector: |∪D − ∩D| < k each round";
    predicate = Predicate.k_set ~k;
    generator = (fun rng -> Detector_gen.k_set rng ~n ~k);
  }

let identical_views ~n =
  {
    name = Printf.sprintf "identical-views(n=%d)" n;
    description = "equation (5): all processes get the same fault set each round";
    predicate = Predicate.identical_views;
    generator = (fun rng -> Detector_gen.identical rng ~n);
  }

let all ~n ~f =
  [
    sync_omission ~n ~f;
    sync_crash ~n ~f;
    async_message_passing ~n ~f;
    async_mixed ~n ~f ~t:f;
    shared_memory ~n ~f;
    atomic_snapshot ~n ~f;
    detector_s ~n;
    k_set_detector ~n ~k:(f + 1);
    identical_views ~n;
  ]
