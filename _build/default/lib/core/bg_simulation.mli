(** The Borowsky–Gafni simulation: wait-free simulators run a k-resilient
    n-process round-based protocol.

    Section 4 turns asynchronous impossibility results into synchronous
    lower bounds; those asynchronous results ([9, 11, 12]) rest on this
    simulation, introduced in the same line of work as the paper's iterated
    models ([4]).  [m = k + 1] simulators, of which any [k] may crash,
    cooperatively execute an [n]-process protocol that tolerates [k]
    crashes: every simulated step is funnelled through a {e safe-agreement}
    instance (see {!Shm.Safe_agreement} for the register-level protocol;
    here instances are modelled at doorway granularity), so all simulators
    agree on every simulated process's round-[r] receive set.  A simulator
    that crashes inside a doorway wedges {e that one instance} — the
    corresponding simulated process stops, and with at most [k] simulator
    crashes at most [k] simulated processes stop: the simulated execution
    is a legal [k]-resilient asynchronous one.

    Simulated rounds follow the item-3 discipline: a receive set is
    proposed once at least [n − k] round-[r] emissions are computable, so
    every agreed fault set has [|D(j,r)| ≤ k]. *)

type 'out outcome = {
  completed : int array;  (** Simulated rounds completed, per process. *)
  decisions : 'out option array;
      (** Decisions of simulated processes (canonical replay). *)
  fault_set_sizes_ok : bool;
      (** Every agreed receive set missed at most [k] processes. *)
  wedged_instances : int;
      (** Safe-agreement instances blocked by simulator crashes. *)
  stalled_processes : int;
      (** Simulated processes that did not complete every round. *)
  actions : int;  (** Total simulator actions executed. *)
}

val simulate :
  rng:Dsim.Rng.t ->
  simulators:int ->
  ?crashes:(int * int) list ->
  n:int ->
  k:int ->
  rounds:int ->
  algorithm:('s, 'm, 'out) Algorithm.t ->
  unit ->
  'out outcome
(** [simulate ~rng ~simulators ~n ~k ~rounds ~algorithm ()] runs the
    simulation under a random interleaving of simulator actions.
    [crashes] lists [(simulator, after_actions)] pairs — the crash may land
    inside a doorway, wedging one instance.
    @raise Invalid_argument if [simulators < 1], [k ≥ n], or more crashes
    than [simulators − 1] are requested (someone must survive). *)
