(** Process identifiers.

    Processes are numbered [0 .. n-1] within a system of [n] processes.  The
    identifier order matters: several of the paper's algorithms (e.g. the
    one-round k-set agreement of Theorem 3.1) break ties by the lowest
    process identifier. *)

type t = int
(** A process identifier; always non-negative. *)

val compare : t -> t -> int
(** Standard total order on identifiers. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [p3]. *)

val to_string : t -> string

val all : int -> t list
(** [all n] is [[0; 1; ...; n-1]].
    @raise Invalid_argument if [n < 0]. *)
