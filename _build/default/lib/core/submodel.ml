type verdict = Implies | Counterexample of Fault_history.t

(* All per-round assignments: one proper subset of S per process. *)
let all_round_assignments n =
  let proper = List.filter (fun s -> not (Pset.equal s (Pset.full n))) (Pset.subsets (Pset.full n)) in
  let rec build i =
    if i = n then [ [] ]
    else
      let rest = build (i + 1) in
      List.concat_map (fun s -> List.map (fun tail -> s :: tail) rest) proper
  in
  List.map Array.of_list (build 0)

let check_exhaustive ~n ~rounds a b =
  let assignments = all_round_assignments n in
  let exception Found of Fault_history.t in
  let rec explore history depth =
    if Predicate.holds a history then begin
      if not (Predicate.holds b history) then raise (Found history);
      if depth < rounds then
        List.iter
          (fun d -> explore (Fault_history.append history d) (depth + 1))
          assignments
    end
  in
  match explore (Fault_history.empty ~n) 0 with
  | () -> Implies
  | exception Found h -> Counterexample h

let check_sampled rng ~samples ~rounds ~gen ~n a b =
  let exception Found of Fault_history.t in
  try
    for _ = 1 to samples do
      let detector = gen (Dsim.Rng.split rng) in
      let history = ref (Fault_history.empty ~n) in
      for _ = 1 to rounds do
        history := Fault_history.append !history (Detector.next detector !history)
      done;
      if Predicate.holds a !history && not (Predicate.holds b !history) then
        raise (Found !history)
    done;
    Implies
  with Found h -> Counterexample h

let pp_verdict ppf = function
  | Implies -> Format.pp_print_string ppf "implies"
  | Counterexample h ->
    Format.fprintf ppf "counterexample:@ %a" Fault_history.pp h
