(** The submodel relation between RRFD systems (Section 2).

    [A] is a submodel of [B] iff [P_A ⇒ P_B]: every fault history allowed by
    [A] is allowed by [B], so [A] trivially implements [B].  Implication is
    checked two ways: exhaustively over every history of a small system
    (sound and complete for that size) and by sampling histories from a
    generator (a cheap refutation search at larger sizes). *)

type verdict =
  | Implies  (** No counterexample found in the searched space. *)
  | Counterexample of Fault_history.t
      (** A history satisfying the left predicate but not the right. *)

val check_exhaustive : n:int -> rounds:int -> Predicate.t -> Predicate.t -> verdict
(** [check_exhaustive ~n ~rounds a b] enumerates every fault history of at
    most [rounds] rounds over [n] processes (every process's fault set
    ranging over all proper subsets), pruning prefixes that already violate
    [a], and reports the first history satisfying [a] but violating [b].
    Exponential: intended for [n ≤ 3], [rounds ≤ 2]
    ([((2^n − 1)^n)^rounds] histories). *)

val check_sampled :
  Dsim.Rng.t ->
  samples:int ->
  rounds:int ->
  gen:(Dsim.Rng.t -> Detector.t) ->
  n:int ->
  Predicate.t ->
  Predicate.t ->
  verdict
(** [check_sampled rng ~samples ~rounds ~gen ~n a b] draws [samples]
    detectors from [gen], runs each for [rounds] rounds, discards histories
    that do not satisfy [a] (a generator bug), and reports any that violate
    [b]. *)

val pp_verdict : Format.formatter -> verdict -> unit
