(** Theorem 4.3: simulating synchronous {e crash} faults in an asynchronous
    snapshot system, three asynchronous rounds per simulated round.

    Each simulated synchronous round [r] runs as a group of three
    asynchronous rounds:

    + the process writes its simulated round-[r] value and snapshots; the
      processes it misses join its proposed-crashed set [F_i];
    + and 3. the processes run [n] adopt-commit protocols in parallel, one
      per target [p_j], with input ["p_j-faulty"] if [j ∈ F_i] and
      ["p_j-alive(v)"] otherwise.

    A target committed faulty delivers [⊥] (it {e crashed} this simulated
    round); a target adopted faulty joins [F_i] but its value — obtained from
    an alive proposal read during the protocol — is still delivered, so a
    process appears crashed only once somebody commits it, and then
    adopt-commit agreement forces everyone to commit it from the next
    simulated round on: the crash-closure predicate holds.

    {b Implementation note} (documented in DESIGN.md): the paper asserts that
    a process that ends with {e adopt} "p_j-faulty" must have read an alive
    proposal carrying [p_j]'s value.  With votes that carry only the voter's
    own input this can fail (the alive proposal may hide behind an
    intermediate adopter), so our second-round votes also carry a {e witness}
    — the alive value the voter saw, if any — which restores the paper's
    claim in every case. *)

type 'm proposal = Faulty | Alive of 'm

type ('s, 'm) state
(** Simulator state wrapping the synchronous algorithm's state. *)

type 'm message
(** Messages of the simulating asynchronous algorithm. *)

val algorithm :
  sync:('s, 'm, 'out) Algorithm.t -> (('s, 'm) state, 'm message, 'out) Algorithm.t
(** [algorithm ~sync] is the asynchronous RRFD algorithm simulating [sync].
    Run it under a detector satisfying [Predicate.snapshot ~f:k]; three
    asynchronous rounds advance one synchronous round.  Its [decide] returns
    [sync]'s decision, except that a process that committed {e itself}
    faulty never decides (its simulated view is not that of a live process —
    Corollary 4.4).  Synchronous messages are compared with polymorphic
    equality. *)

val async_rounds : sync_rounds:int -> int
(** [async_rounds ~sync_rounds] is [3 * sync_rounds]. *)

val sync_rounds_completed : ('s, 'm) state -> int

val sync_state : ('s, 'm) state -> 's
(** The simulated process's synchronous state. *)

val self_crashed : ('s, 'm) state -> bool
(** Whether this process committed itself faulty at some simulated round. *)

val proposed_crashed : ('s, 'm) state -> Pset.t
(** The process's current [F_i]. *)

val missing_witnesses : ('s, 'm) state -> int
(** Number of adopt-faulty resolutions for which no alive value was
    available (expected 0; see the implementation note above). *)

val simulated_history : ('s, 'm) state array -> Fault_history.t
(** The synchronous fault history induced by the simulation:
    [D_sync(i,r) = { j :] process [i] committed [j] faulty at simulated round
    [r }].  All states must have completed the same number of simulated
    rounds. *)

val check_simulated :
  f:int -> k:int -> ('s, 'm) state array -> string option
(** Verifies the theorem's conclusion on a completed run: the simulated
    history is a legal synchronous {e crash} history with at most [f] faults
    — cumulative union ≤ [f] and ≤ [k·r] by every round [r], and crash
    closure among processes that never committed themselves faulty.
    Returns a description of the earliest violation, or [None]. *)
