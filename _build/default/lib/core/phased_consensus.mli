(** Consensus under an eventually-stable RRFD — the paper's Section-7
    program ("we advocate using these models to develop real algorithms")
    carried out.

    The model mixes the paper's ingredients per round — different rounds of
    one system may obey different clauses, which is itself an RRFD-style
    definition.  Rounds come in phases of three:

    - {b candidate round} (round 1 of each phase): fault sets are only
      bounded ([|D| ≤ f]) — but from round [stabilize_at] on they are
      {e identical} at all processes (equation (5), as the semi-synchronous
      system provides after stabilisation);
    - {b adopt-commit rounds} (rounds 2–3): the atomic-snapshot clauses
      (self-inclusion + comparability), always.

    The algorithm: each phase, pick the Theorem-3.1 candidate from the
    candidate round, then run adopt-commit on it; commit ⇒ decide, adopt ⇒
    carry the value into the next phase.  Adopt-commit (safe under the
    snapshot clauses) makes an early commit sticky — every later estimate
    equals it — and once candidate rounds turn identical every process
    picks the same candidate, commits, and decides: agreement + validity
    always, termination within one full phase after stabilisation. *)

val predicate : f:int -> stabilize_at:int -> Predicate.t
(** The per-round mixed predicate described above. *)

val detector :
  Dsim.Rng.t -> n:int -> f:int -> stabilize_at:int -> Detector.t
(** A constructive adversary for {!predicate}: worst-case divergent
    candidate rounds before stabilisation, IIS-style adopt-commit
    rounds. *)

type state

type message

val algorithm : inputs:int array -> (state, message, int) Algorithm.t

val rounds_needed : stabilize_at:int -> int
(** A horizon by which every process has decided under {!predicate}:
    one full phase after stabilisation. *)
