lib/core/submodel.mli: Detector Dsim Fault_history Format Predicate
