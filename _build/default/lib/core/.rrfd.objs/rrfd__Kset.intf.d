lib/core/kset.mli: Algorithm
