lib/core/emulation.mli: Detector Fault_history Pset
