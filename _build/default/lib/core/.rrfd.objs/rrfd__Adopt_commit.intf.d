lib/core/adopt_commit.mli: Algorithm Format
