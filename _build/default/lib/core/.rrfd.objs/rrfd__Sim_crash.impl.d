lib/core/sim_crash.ml: Adopt_commit Algorithm Array Fault_history Fun List Option Printf Proc Pset
