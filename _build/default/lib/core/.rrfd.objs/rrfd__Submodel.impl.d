lib/core/submodel.ml: Array Detector Dsim Fault_history Format List Predicate Pset
