lib/core/emulation.ml: Array Detector Fault_history Pset
