lib/core/predicate.mli: Fault_history
