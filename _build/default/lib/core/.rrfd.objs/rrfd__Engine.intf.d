lib/core/engine.mli: Algorithm Detector Fault_history Predicate
