lib/core/model.mli: Detector Dsim Predicate
