lib/core/phased_consensus.ml: Adopt_commit Algorithm Array Detector Detector_gen Dsim Fault_history List Option Predicate Printf Proc Pset
