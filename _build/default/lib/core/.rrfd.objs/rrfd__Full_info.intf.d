lib/core/full_info.mli: Algorithm Format Proc Pset
