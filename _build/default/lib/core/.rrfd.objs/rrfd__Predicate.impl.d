lib/core/predicate.ml: Fault_history List Printf Pset
