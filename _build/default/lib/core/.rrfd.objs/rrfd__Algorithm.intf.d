lib/core/algorithm.mli: Proc Pset
