lib/core/detector_gen.ml: Array Detector Dsim Fun Printf Pset
