lib/core/pset.mli: Dsim Format Proc
