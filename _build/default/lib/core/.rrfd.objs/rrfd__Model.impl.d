lib/core/model.ml: Detector Detector_gen Dsim Predicate Printf
