lib/core/detector_gen.mli: Detector Dsim
