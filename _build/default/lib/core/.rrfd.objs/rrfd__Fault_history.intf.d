lib/core/fault_history.mli: Format Proc Pset
