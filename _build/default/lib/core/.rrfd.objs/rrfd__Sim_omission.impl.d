lib/core/sim_omission.ml: Engine Predicate
