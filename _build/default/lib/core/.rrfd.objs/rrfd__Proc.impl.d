lib/core/proc.ml: Format Fun Int List
