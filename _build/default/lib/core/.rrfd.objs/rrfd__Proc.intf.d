lib/core/proc.mli: Format
