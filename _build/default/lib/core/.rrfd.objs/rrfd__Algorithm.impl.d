lib/core/algorithm.ml: Option Proc Pset
