lib/core/trace.mli: Algorithm Detector Engine Format Predicate Proc Pset
