lib/core/sim_omission.mli: Algorithm Detector Engine
