lib/core/phased_consensus.mli: Algorithm Detector Dsim Predicate
