lib/core/detector.mli: Fault_history Pset
