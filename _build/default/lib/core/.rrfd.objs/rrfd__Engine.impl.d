lib/core/engine.ml: Algorithm Array Detector Fault_history Option Predicate Pset
