lib/core/bg_simulation.ml: Algorithm Array Dsim List Option Pset
