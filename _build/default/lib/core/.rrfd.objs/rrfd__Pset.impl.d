lib/core/pset.ml: Dsim Format Int List Printf Proc
