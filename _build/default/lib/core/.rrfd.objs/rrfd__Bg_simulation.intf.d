lib/core/bg_simulation.mli: Algorithm Dsim
