lib/core/full_info.ml: Algorithm Array Format Int Map Option Proc Pset
