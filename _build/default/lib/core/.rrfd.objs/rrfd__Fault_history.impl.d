lib/core/fault_history.ml: Array Buffer Format List Printf Pset String
