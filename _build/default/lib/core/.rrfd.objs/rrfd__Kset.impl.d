lib/core/kset.ml: Algorithm Array Option Proc Pset
