lib/core/trace.ml: Algorithm Array Engine Fault_history Format List Proc Pset
