lib/core/adopt_commit.ml: Algorithm Array Format Fun List Option Printf Proc Pset
