lib/core/detector.ml: Array Fault_history List Pset
