lib/core/sim_crash.mli: Algorithm Fault_history Pset
