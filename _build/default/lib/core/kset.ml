type state = {
  me : Proc.t;
  input : int;
  decision : int option;
}

let one_round ~inputs =
  {
    Algorithm.name = "kset-one-round";
    init =
      (fun ~n p ->
        if Array.length inputs <> n then
          invalid_arg "Kset.one_round: inputs length mismatch";
        { me = p; input = inputs.(p); decision = None });
    emit = (fun s ~round:_ -> s.input);
    deliver =
      (fun s ~round ~received ~faulty ->
        if round > 1 || Option.is_some s.decision then s
        else begin
          (* Decide the value of the lowest-id process outside D(i,1).  The
             engine guarantees D ≠ S, so a candidate exists; its message was
             received unless it is this very process (own value is known
             locally either way). *)
          let n = Array.length received in
          let candidates = Pset.diff (Pset.full n) faulty in
          match Pset.min_elt candidates with
          | None -> s
          | Some j ->
            let value =
              match received.(j) with
              | Some v -> v
              | None -> if Proc.equal j s.me then s.input else assert false
            in
            { s with decision = Some value }
        end);
    decide = (fun s -> s.decision);
  }

let consensus ~inputs = { (one_round ~inputs) with Algorithm.name = "consensus-one-round" }
