let budget ~f ~k =
  if k <= 0 || f < k then invalid_arg "Sim_omission.budget: need f ≥ k > 0";
  f / k

type 'out result = {
  outcome : 'out Engine.outcome;
  omission_violation : string option;
}

let simulate ~n ~f ~k ~algorithm ~detector () =
  let rounds = budget ~f ~k in
  let outcome =
    Engine.run ~n ~max_rounds:rounds ~check:(Predicate.snapshot ~f:k)
      ~stop_when_decided:false ~algorithm ~detector ()
  in
  let omission_violation =
    match outcome.Engine.violation with
    | Some v -> Some ("asynchronous side broke its own predicate: " ^ v)
    | None -> Predicate.explain (Predicate.omission ~f) outcome.Engine.history
  in
  { outcome; omission_violation }
