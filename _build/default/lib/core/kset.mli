(** k-set agreement under the k-set RRFD (Section 3).

    Theorem 3.1: with a detector guaranteeing
    [∀r. |⋃_i D(i,r) − ⋂_i D(i,r)| < k], k-set agreement is solvable in
    {e one} round: each process emits its value and decides the value of the
    process with the lowest identifier among those it did not suspect.

    The proof's counting argument: if values of [p_a < p_b] are both chosen,
    then [p_a] is in the union of the fault sets (whoever chose [p_b]
    suspected [p_a]) but not in the intersection (whoever chose [p_a] did
    not), so at most [k − 1] processes can separate chosen values, bounding
    distinct decisions by [k]. *)

type state
(** Per-process state of the one-round algorithm. *)

val one_round : inputs:int array -> (state, int, int) Algorithm.t
(** [one_round ~inputs] is the algorithm of Theorem 3.1.  Process [i] starts
    with [inputs.(i)], emits it in round 1, and decides the value received
    from the lowest-identifier unsuspected process.  Runs under a detector
    satisfying [Predicate.k_set ~k]; the number of distinct decisions is then
    at most [k] (checked by {!Tasks}-style checkers in the experiments). *)

val consensus : inputs:int array -> (state, int, int) Algorithm.t
(** Same algorithm; under [Predicate.k_set ~k:1] (or
    {!Predicate.identical_views}) it solves consensus.  Exposed separately
    for readability at call sites. *)
