examples/bg_simulation_demo.mli:
