examples/semisync_consensus.mli:
