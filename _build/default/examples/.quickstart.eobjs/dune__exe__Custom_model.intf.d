examples/custom_model.mli:
