examples/custom_model.ml: Array Dsim List Printf Rrfd Tasks
