examples/bg_simulation_demo.ml: Array Dsim List Printf Rrfd Shm Syncnet Tasks
