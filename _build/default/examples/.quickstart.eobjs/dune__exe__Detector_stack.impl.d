examples/detector_stack.ml: Array Dsim Format Msgnet Printf Rrfd Tasks
