examples/sync_vs_async.mli:
