examples/quickstart.mli:
