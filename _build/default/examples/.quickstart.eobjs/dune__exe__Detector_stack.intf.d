examples/detector_stack.mli:
