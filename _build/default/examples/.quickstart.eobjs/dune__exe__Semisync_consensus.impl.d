examples/semisync_consensus.ml: Array Dsim List Option Printf Rrfd Semisync Tasks
