examples/sync_vs_async.ml: Adversary Array Dsim Printf Rrfd Syncnet Tasks
