examples/quickstart.ml: Array Dsim Format Printf Rrfd Tasks
