(* Using the library as a framework: define your own RRFD system, place it
   in the Section-2 lattice, and test what it can solve.

   We invent a "majority-intersection" detector: every round, any two
   processes' unsuspected sets intersect in a majority of the system.
   Where does it sit relative to the paper's named models, and does
   one-round k-set agreement work under it?

     dune exec examples/custom_model.exe *)

module P = Rrfd.Predicate
module Pset = Rrfd.Pset

(* 1. The predicate: |S∖D(i,r) ∩ S∖D(j,r)| > n/2 for all i, j, r. *)
let majority_intersection =
  P.make ~name:"majority-intersection"
    ~doc:"any two heard-sets share a majority each round" (fun h ->
      let n = Rrfd.Fault_history.n h in
      let heard i r =
        Pset.diff (Pset.full n) (Rrfd.Fault_history.d h ~proc:i ~round:r)
      in
      let violation = ref None in
      for r = 1 to Rrfd.Fault_history.rounds h do
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if
              !violation = None
              && 2 * Pset.cardinal (Pset.inter (heard i r) (heard j r)) <= n
            then
              violation :=
                Some (Printf.sprintf "p%d and p%d share no majority at round %d" i j r)
          done
        done
      done;
      !violation)

(* 2. A constructive adversary: everyone hears a common majority core plus
   arbitrary extras. *)
let majority_detector rng ~n =
  Rrfd.Detector.make ~name:"majority-core" (fun _h ->
      let core_size = (n / 2) + 1 in
      let core = Pset.random_subset_of_size rng (Pset.full n) core_size in
      Array.init n (fun _ ->
          let extras = Pset.random_subset rng (Pset.diff (Pset.full n) core) in
          Pset.diff (Pset.full n) (Pset.union core extras)))

let () =
  let n = 7 in
  let rng = Dsim.Rng.create 11 in

  Printf.printf "=== placing the custom model in the lattice (n = 3) ===\n";
  let relations =
    [
      ("majority ⇒ async(⌈n/2⌉−1)", majority_intersection, P.async_resilient ~f:1);
      ("majority ⇒ shm", majority_intersection, P.shared_memory ~f:1);
      ("majority ⇒ k-set(1)", majority_intersection, P.k_set ~k:1);
      ("snapshot(1) ⇒ majority", P.snapshot ~f:1, majority_intersection);
      ("shm(1) ⇒ majority", P.shared_memory ~f:1, majority_intersection);
    ]
  in
  List.iter
    (fun (name, a, b) ->
      let verdict = Rrfd.Submodel.check_exhaustive ~n:3 ~rounds:1 a b in
      Printf.printf "  %-28s %s\n" name
        (match verdict with
        | Rrfd.Submodel.Implies -> "holds"
        | Rrfd.Submodel.Counterexample _ -> "refuted"))
    relations;

  Printf.printf "\n=== what can it solve? ===\n";
  (* Majority intersection bounds the uncertainty: |∪D − ∩D| < n/2, so the
     one-round algorithm gives ⌈n/2⌉-set agreement "for free". *)
  let k = (n / 2) + 1 in
  let inputs = Tasks.Inputs.distinct n in
  let trials = 2000 in
  let worst = ref 0 in
  for _ = 1 to trials do
    let outcome =
      Rrfd.Engine.run ~n ~check:majority_intersection
        ~algorithm:(Rrfd.Kset.one_round ~inputs)
        ~detector:(majority_detector (Dsim.Rng.split rng) ~n)
        ()
    in
    assert (outcome.Rrfd.Engine.violation = None);
    worst :=
      max !worst
        (Tasks.Agreement.distinct_decisions
           ~decisions:outcome.Rrfd.Engine.decisions)
  done;
  Printf.printf
    "  one-round agreement over %d adversarial runs: worst %d distinct \
     values (guaranteed ≤ %d)\n"
    trials !worst k;

  Printf.printf "\n=== and what the engine catches ===\n";
  (* Hand the engine a detector that breaks the predicate: it reports the
     earliest bad round instead of computing garbage. *)
  let cheating =
    Rrfd.Detector.constant ~n
      (Array.init n (fun i -> Pset.remove i (Pset.full n)))
  in
  let outcome =
    Rrfd.Engine.run ~n ~check:majority_intersection ~stop_when_decided:false
      ~max_rounds:5
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector:cheating ()
  in
  Printf.printf "  cheating detector: %s\n"
    (match outcome.Rrfd.Engine.violation with
    | Some reason -> "caught — " ^ reason
    | None -> "NOT caught (bug!)")
