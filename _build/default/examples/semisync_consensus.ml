(* Section 5: solving the Dolev–Dwork–Stockmeyer open problem.

   Their model — asynchronous processes, atomic receive/broadcast steps,
   fast reliable broadcast — had a 2n-step consensus algorithm; the paper
   shows 2 steps suffice by implementing the equation-(5) RRFD in two
   steps and running Theorem 3.1 with k = 1 on top.

     dune exec examples/semisync_consensus.exe *)

let () =
  let n = 10 in
  let rng = Dsim.Rng.create 2024 in
  let inputs = Array.init n (fun i -> 100 + i) in

  Printf.printf "=== the paper's 2-step algorithm ===\n";
  (* Crash almost everyone, at adversarial moments. *)
  let crashes = [ (1, 1); (4, 2); (7, 1); (9, 3) ] in
  let report =
    Semisync.Two_step.run ~n ~inputs
      ~schedule:(Semisync.Machine.Random rng)
      ~crashes ()
  in
  let result = report.Semisync.Two_step.result in
  Array.iteri
    (fun i d ->
      let crashed = Rrfd.Pset.mem i result.Semisync.Machine.crashed in
      match (d, result.Semisync.Machine.steps_to_decide.(i)) with
      | Some v, Some s -> Printf.printf "  p%d decided %d after %d steps%s\n" i v s
                            (if crashed then " (then crashed)" else "")
      | _ -> Printf.printf "  p%d crashed before deciding\n" i)
    result.Semisync.Machine.decisions;
  Printf.printf "equation (5) — identical fault sets every round: %s\n"
    (match Semisync.Two_step.check_identical report with
    | None -> "holds"
    | Some reason -> "VIOLATED: " ^ reason);
  Printf.printf "consensus: %s\n"
    (match
       Tasks.Agreement.check
         ~allow_undecided:result.Semisync.Machine.crashed ~k:1 ~inputs
         result.Semisync.Machine.decisions
     with
    | None -> "OK"
    | Some reason -> "VIOLATED: " ^ reason);

  Printf.printf "\n=== step-count scaling vs the Θ(n) baseline ===\n";
  Printf.printf "  %-4s  %-14s  %-14s\n" "n" "2-step (paper)" "ring baseline";
  List.iter
    (fun n ->
      let inputs = Tasks.Inputs.distinct n in
      let fast =
        Semisync.Two_step.run ~n ~inputs ~schedule:Semisync.Machine.Round_robin ()
      in
      let slow =
        Semisync.Ring_baseline.run ~n ~inputs ~schedule:Semisync.Machine.Round_robin
      in
      let max_steps r =
        Array.fold_left
          (fun acc s -> max acc (Option.value s ~default:0))
          0 r.Semisync.Machine.steps_to_decide
      in
      Printf.printf "  %-4d  %-14d  %-14d\n" n
        (max_steps fast.Semisync.Two_step.result)
        (max_steps slow))
    [ 2; 4; 8; 16; 32 ]
