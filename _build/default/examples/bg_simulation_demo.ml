(* The Borowsky–Gafni simulation in action: the machinery behind the
   asynchronous impossibility results that Section 4 converts into
   synchronous lower bounds.

   k+1 simulators — any k of which may crash — drive an n-process,
   k-resilient, round-based execution.  Every simulated receive set is
   agreed through a safe-agreement doorway; a simulator that dies inside a
   doorway wedges exactly that one simulated process.

     dune exec examples/bg_simulation_demo.exe *)

let run ~label ~crashes =
  let n = 6 and k = 2 and rounds = 3 in
  let rng = Dsim.Rng.create 123 in
  let inputs = Tasks.Inputs.distinct n in
  let o =
    Rrfd.Bg_simulation.simulate ~rng ~simulators:(k + 1) ~crashes ~n ~k ~rounds
      ~algorithm:(Syncnet.Flood.min_flood ~inputs ~horizon:rounds)
      ()
  in
  Printf.printf "%s (n=%d, k=%d, %d simulators, %d crash(es)):\n" label n k
    (k + 1) (List.length crashes);
  Array.iteri
    (fun j c ->
      Printf.printf "  simulated p%d: %d/%d rounds%s\n" j c rounds
        (match o.Rrfd.Bg_simulation.decisions.(j) with
        | Some v -> Printf.sprintf ", decided %d" v
        | None -> ", stalled"))
    o.Rrfd.Bg_simulation.completed;
  Printf.printf
    "  wedged safe-agreement instances: %d; receive sets within k: %s; \
     simulator actions: %d\n\n"
    o.Rrfd.Bg_simulation.wedged_instances
    (if o.Rrfd.Bg_simulation.fault_set_sizes_ok then "yes" else "NO")
    o.Rrfd.Bg_simulation.actions

let () =
  run ~label:"crash-free" ~crashes:[];
  run ~label:"one simulator dies early" ~crashes:[ (0, 9) ];
  run ~label:"two simulators die" ~crashes:[ (0, 7); (1, 25) ];

  (* The register-level primitive on its own: a doorway crash blocks. *)
  Printf.printf "safe agreement at register level:\n";
  let inputs = [| 10; 20; 30 |] in
  let ok = Shm.Safe_agreement.run ~inputs ~schedule:Shm.Exec.Round_robin () in
  Printf.printf "  crash-free: everyone decides %s\n"
    (match ok.Shm.Safe_agreement.decisions.(0) with
    | Some v -> string_of_int v
    | None -> "⊥?!");
  let blocked =
    Shm.Safe_agreement.run ~inputs
      ~stuck_in_doorway:[| true; false; false |]
      ~schedule:(Shm.Exec.Fixed (List.init 200 (fun i -> if i < 40 then 0 else 1 + (i mod 2))))
      ()
  in
  Printf.printf "  p0 dies in its doorway: p1 %s, p2 %s\n"
    (match blocked.Shm.Safe_agreement.decisions.(1) with
    | Some _ -> "decided (unexpected)"
    | None -> "blocked")
    (match blocked.Shm.Safe_agreement.decisions.(2) with
    | Some _ -> "decided (unexpected)"
    | None -> "blocked")
