(* Section 4 end to end: asynchronous systems simulate synchronous ones,
   and asynchronous impossibility becomes a synchronous lower bound.

   1. We run a synchronous flooding algorithm *unchanged* inside an
      asynchronous snapshot system with k failures and watch the induced
      history stay inside the synchronous omission predicate (Thm 4.1).
   2. We run the crash-fault version: three asynchronous rounds per
      simulated synchronous round via parallel adopt-commits (Thm 4.3).
   3. We replay the lower-bound story (Cor 4.2/4.4): the chain adversary
      defeats any ⌊f/k⌋-round flooding, and one extra round restores
      agreement.

     dune exec examples/sync_vs_async.exe *)

let section title = Printf.printf "\n--- %s ---\n" title

let () =
  let rng = Dsim.Rng.create 7 in

  section "Theorem 4.1: async-with-k-failures runs sync omission rounds";
  let n = 8 and f = 4 and k = 2 in
  let inputs = Tasks.Inputs.distinct n in
  let result =
    Rrfd.Sim_omission.simulate ~n ~f ~k
      ~algorithm:(Rrfd.Full_info.algorithm ~inputs)
      ~detector:(Rrfd.Detector_gen.iis rng ~n ~f:k)
      ()
  in
  Printf.printf "simulated %d rounds (⌊f/k⌋ = ⌊%d/%d⌋)\n"
    result.Rrfd.Sim_omission.outcome.Rrfd.Engine.rounds_used f k;
  Printf.printf "omission predicate on the induced history: %s\n"
    (match result.Rrfd.Sim_omission.omission_violation with
    | None -> "holds"
    | Some reason -> "VIOLATED: " ^ reason);

  section "Theorem 4.3: crash faults via adopt-commit (3 async rounds each)";
  let sync_rounds = 3 in
  let sync = Syncnet.Flood.min_flood ~inputs ~horizon:sync_rounds in
  let algorithm = Rrfd.Sim_crash.algorithm ~sync in
  let states, _ =
    Rrfd.Engine.states_after ~n
      ~rounds:(Rrfd.Sim_crash.async_rounds ~sync_rounds)
      ~algorithm
      ~detector:(Rrfd.Detector_gen.iis rng ~n ~f:1)
      ()
  in
  let history = Rrfd.Sim_crash.simulated_history states in
  Printf.printf "asynchronous rounds used: %d for %d simulated rounds\n"
    (Rrfd.Sim_crash.async_rounds ~sync_rounds)
    sync_rounds;
  Printf.printf "simulated crash faults: %d\n"
    (Rrfd.Pset.cardinal (Rrfd.Fault_history.cumulative_union history));
  Printf.printf "crash-history check: %s\n"
    (match Rrfd.Sim_crash.check_simulated ~f:sync_rounds ~k:1 states with
    | None -> "holds"
    | Some reason -> "VIOLATED: " ^ reason);

  section "Corollary 4.2/4.4: the ⌊f/k⌋ + 1 round lower bound";
  let k = 2 and chain_rounds = 3 in
  let f = k * chain_rounds in
  let n = Adversary.Lower_bound.required_processes ~k ~rounds:chain_rounds in
  Printf.printf "n = %d, k = %d, f = %d: bound is ⌊f/k⌋+1 = %d rounds\n" n k f
    ((f / k) + 1);
  for horizon = 1 to (f / k) + 1 do
    let adv = Adversary.Lower_bound.build ~n ~k ~rounds:chain_rounds in
    let pattern = Syncnet.Faults.crash ~n adv.Adversary.Lower_bound.crash_specs in
    let result =
      Syncnet.Sync_net.run ~n ~rounds:horizon ~pattern
        ~algorithm:
          (Syncnet.Flood.min_flood ~inputs:adv.Adversary.Lower_bound.inputs
             ~horizon)
        ()
    in
    let live_decisions =
      Array.mapi
        (fun i d ->
          if Rrfd.Pset.mem i result.Syncnet.Sync_net.crashed then None else d)
        result.Syncnet.Sync_net.decisions
    in
    let distinct = Tasks.Agreement.distinct_decisions ~decisions:live_decisions in
    Printf.printf "  horizon %d: %d distinct decisions %s\n" horizon distinct
      (if distinct > k then "(agreement broken — below the bound)"
       else "(k-set agreement holds)")
  done
