(* The classic detector-augmented stack the paper contrasts itself with
   (Sections 6-7), plus a round-by-round RRFD transcript.

   1. ABD: an atomic register built from asynchronous messages + majority.
   2. Heartbeats + rotating-coordinator consensus over the same network.
   3. The same task solved the RRFD way, with a full transcript printed by
      the Trace module — compare the two world-views side by side.

     dune exec examples/detector_stack.exe *)

let () =
  Printf.printf "=== 1. ABD register over messages (item 4's substrate) ===\n";
  let sim = Dsim.Sim.create ~seed:5 () in
  let reg = Msgnet.Abd.create ~sim ~n:5 ~f:2 ~writer:0 () in
  Msgnet.Abd.crash reg 4;
  Msgnet.Abd.write reg ~value:2024 ~on_done:(fun () ->
      Printf.printf "  write(2024) completed at t=%.1f\n" (Dsim.Sim.now sim);
      Msgnet.Abd.read reg ~proc:3 ~on_done:(fun v ->
          Printf.printf "  read at p3 -> %s at t=%.1f\n"
            (match v with Some v -> string_of_int v | None -> "⊥")
            (Dsim.Sim.now sim)));
  Dsim.Sim.run sim;
  Printf.printf "  history atomic: %s\n"
    (match Msgnet.Abd.History.check_atomic (Msgnet.Abd.History.events reg) with
    | None -> "yes"
    | Some r -> "NO — " ^ r);

  Printf.printf "\n=== 2. consensus with a heartbeat failure detector ===\n";
  let inputs = [| 7; 7; 3; 9; 9 |] in
  let r = Msgnet.Ct_consensus.run ~n:5 ~f:2 ~inputs ~crashes:[ (0, 2.0) ] () in
  Array.iteri
    (fun i d ->
      match (d, r.Msgnet.Ct_consensus.decision_times.(i)) with
      | Some v, Some t -> Printf.printf "  p%d decided %d at t=%.1f\n" i v t
      | _ -> Printf.printf "  p%d: no decision (crashed)\n" i)
    r.Msgnet.Ct_consensus.decisions;
  Printf.printf "  phases: %d, false suspicions: %d, messages: %d\n"
    r.Msgnet.Ct_consensus.phases_used r.Msgnet.Ct_consensus.false_suspicions
    r.Msgnet.Ct_consensus.messages_sent;

  Printf.printf "\n=== 3. the RRFD view of the same task, with transcript ===\n";
  let n = 4 in
  let inputs = [| 7; 3; 9; 5 |] in
  let rng = Dsim.Rng.create 99 in
  let trace =
    Rrfd.Trace.record ~n
      ~check:(Rrfd.Predicate.k_set ~k:2)
      ~pp_msg:Format.pp_print_int
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector:(Rrfd.Detector_gen.k_set rng ~n ~k:2)
      ()
  in
  Format.printf "@[<v>%a@]@." (Rrfd.Trace.pp Format.pp_print_int) trace;
  Printf.printf "2-set agreement: %s\n"
    (match
       Tasks.Agreement.check ~k:2 ~inputs
         trace.Rrfd.Trace.outcome.Rrfd.Engine.decisions
     with
    | None -> "OK"
    | Some reason -> "VIOLATED: " ^ reason)
