(* Quickstart: the RRFD framework in ~60 lines.

   We build the Section-3 system — a round-by-round fault detector
   guaranteeing |∪D − ∩D| < k every round — and run the paper's one-round
   k-set agreement algorithm (Theorem 3.1) against it.

     dune exec examples/quickstart.exe *)

let () =
  let n = 8 and k = 3 in
  let rng = Dsim.Rng.create 42 in

  (* Every process proposes its own id — the hardest input for agreement. *)
  let inputs = Tasks.Inputs.distinct n in

  (* An adversarial detector whose histories satisfy the k-set predicate.
     The engine re-checks the predicate online, so a buggy adversary is
     caught at the first offending round. *)
  let detector = Rrfd.Detector_gen.k_set rng ~n ~k in

  let outcome =
    Rrfd.Engine.run ~n
      ~check:(Rrfd.Predicate.k_set ~k)
      ~algorithm:(Rrfd.Kset.one_round ~inputs)
      ~detector ()
  in

  Printf.printf "system: n = %d processes, k-set detector with k = %d\n" n k;
  Printf.printf "rounds used: %d (Theorem 3.1 promises exactly 1)\n"
    outcome.Rrfd.Engine.rounds_used;

  (* What did the detector do, and what did everyone decide? *)
  Format.printf "fault history:@.%a@." Rrfd.Fault_history.pp
    outcome.Rrfd.Engine.history;
  Array.iteri
    (fun i d ->
      match d with
      | Some v -> Printf.printf "  p%d decided %d\n" i v
      | None -> Printf.printf "  p%d undecided\n" i)
    outcome.Rrfd.Engine.decisions;

  (* The checker: validity, termination, and at most k distinct values. *)
  (match Tasks.Agreement.check ~k ~inputs outcome.Rrfd.Engine.decisions with
  | None ->
    Printf.printf "k-set agreement: OK (%d distinct decision(s), bound %d)\n"
      (Tasks.Agreement.distinct_decisions ~decisions:outcome.Rrfd.Engine.decisions)
      k
  | Some reason -> Printf.printf "k-set agreement VIOLATED: %s\n" reason);

  (* Consensus is the k = 1 case: under the equation-(5) detector (all
     processes get the same fault set) the same algorithm decides one
     value. *)
  let detector = Rrfd.Detector_gen.identical rng ~n in
  let outcome =
    Rrfd.Engine.run ~n ~algorithm:(Rrfd.Kset.consensus ~inputs) ~detector ()
  in
  Printf.printf "consensus under identical views: %s\n"
    (match Tasks.Agreement.check ~k:1 ~inputs outcome.Rrfd.Engine.decisions with
    | None -> "OK"
    | Some reason -> "VIOLATED: " ^ reason)
